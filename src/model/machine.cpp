#include "model/machine.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace advect::model {

double MachineSpec::task_bw_gbs(int threads) const {
    const double per_core = socket_bw_gbs / cores_per_socket;
    double bw = per_core * threads;
    if (threads > cores_per_socket) bw *= numa_penalty;
    return bw;
}

double MachineSpec::region_overhead_s(int threads) const {
    if (threads <= 1) return 0.0;
    return omp_region_us * 1e-6 * std::log2(static_cast<double>(threads));
}

MachineSpec MachineSpec::jaguarpf() {
    MachineSpec m;
    m.name = "JaguarPF (Cray XT5)";
    m.nodes = 18688;
    m.memory_per_node_gb = 16;
    m.sockets_per_node = 2;
    m.cores_per_socket = 6;
    m.clock_ghz = 2.6;
    m.interconnect = "Cray SeaStar 2+";
    m.mpi_name = "Cray MPT 4.0.0";
    m.core_gf = 1.10;        // 2.6 GHz Istanbul, scalar PGI stencil
    m.socket_bw_gbs = 10.5;  // DDR2-800, 2 channels
    m.omp_region_us = 3.0;
    m.net_alpha_us = 6.0;    // SeaStar 2+ MPI latency
    m.net_bw_gbs = 1.6;      // per-node injection
    m.intra_node_bw_gbs = 1.2;
    m.boundary_eff = 0.85;
    // SeaStar-era MPT progresses little without MPI calls; cf. White &
    // Bova, "Where's the overlap?" [1].
    m.mpi_progress = 0.50;
    return m;
}

MachineSpec MachineSpec::hopper2() {
    MachineSpec m;
    m.name = "Hopper II (Cray XE6)";
    m.nodes = 6392;
    m.memory_per_node_gb = 32;
    m.sockets_per_node = 2;
    m.cores_per_socket = 12;  // two 6-core dies per Magny-Cours socket
    m.clock_ghz = 2.1;
    m.interconnect = "Cray Gemini";
    m.mpi_name = "Cray MPT 5.1.3";
    m.core_gf = 0.92;
    m.socket_bw_gbs = 17.0;  // DDR3-1333
    m.omp_region_us = 1.2;   // lightweight XE6 OpenMP runtime
    m.numa_penalty = 0.80;   // 4 NUMA domains per node
    m.net_alpha_us = 1.6;    // Gemini
    m.net_bw_gbs = 3.5;
    m.intra_node_bw_gbs = 1.6;
    // Gemini offloads transfers via its DMA block-transfer engine: much
    // better independent progress than SeaStar.
    m.mpi_progress = 0.92;
    m.overlap_call_us = 0.5;  // MPT 5 on Gemini: lightweight request path
    m.boundary_eff = 0.9;     // large caches absorb the separate pass
    return m;
}

MachineSpec MachineSpec::lens() {
    MachineSpec m;
    m.name = "Lens (Opteron + Tesla C1060)";
    m.nodes = 31;
    m.memory_per_node_gb = 64;
    m.sockets_per_node = 4;
    m.cores_per_socket = 4;
    m.clock_ghz = 2.3;
    m.interconnect = "DDR Infiniband";
    m.mpi_name = "OpenMPI 1.3.3";
    m.core_gf = 0.78;       // Barcelona (K10) at 2.3 GHz, pre-Istanbul
    m.socket_bw_gbs = 8.0;  // Barcelona-era DDR2
    m.omp_region_us = 2.0;  // 4 sockets
    m.numa_penalty = 0.80;
    m.net_alpha_us = 5.0;
    m.net_bw_gbs = 1.3;  // DDR IB
    m.intra_node_bw_gbs = 0.9;
    m.mpi_progress = 0.30;  // OpenMPI 1.3 without progress thread
    m.gpus_per_node = 1;
    GpuModel g;
    g.props = gpu::DeviceProps::tesla_c1060();
    g.stencil_gf = 50.0;    // cc 1.3 dp stencil (dp peak 78 GF)
    g.face_eff = 0.22;      // simple face kernels fare better vs the slow base
    g.mem_bw_gbs = 42.0;    // of 102 GB/s peak, stencil pattern
    g.shared_per_sm = 16.0 * 1024;
    g.warps_needed = 12.0;
    g.sync_penalty = 0.25;
    g.launch_us = 9.0;
    g.pcie_lat_us = 25.0;
    g.pcie_bw_gbs = 1.1;    // decoupled pageable staging (4-socket chipset)
    g.pcie_coupled_eff = 0.16;
    g.host_stage_bw_gbs = 2.2;
    m.gpu = g;
    return m;
}

MachineSpec MachineSpec::yona() {
    MachineSpec m;
    m.name = "Yona (Opteron + Tesla C2050)";
    m.nodes = 16;
    m.memory_per_node_gb = 32;
    m.sockets_per_node = 2;
    m.cores_per_socket = 6;
    m.clock_ghz = 2.6;
    m.interconnect = "QDR Infiniband";
    m.mpi_name = "OpenMPI 1.7a1";
    m.core_gf = 1.10;
    m.socket_bw_gbs = 11.0;
    m.omp_region_us = 1.5;
    m.net_alpha_us = 2.5;
    m.net_bw_gbs = 2.8;  // QDR IB
    m.intra_node_bw_gbs = 0.55;
    m.mpi_progress = 0.40;
    m.gpus_per_node = 1;
    GpuModel g;
    g.props = gpu::DeviceProps::tesla_c2050();
    g.stencil_gf = 140.0;   // cc 2.0 dp stencil (dp peak 515 GF)
    g.mem_bw_gbs = 66.0;    // of 144 GB/s peak, ECC on, stencil pattern
    g.shared_per_sm = 48.0 * 1024;
    g.warps_needed = 20.0;
    g.sync_penalty = 0.25;
    g.launch_us = 6.0;
    g.pcie_lat_us = 12.0;
    g.pcie_bw_gbs = 1.6;    // "faster PCIe bus" than Lens; decoupled staging
    g.pcie_coupled_eff = 0.135;
    g.host_stage_bw_gbs = 3.0;
    m.gpu = g;
    return m;
}

std::vector<int> MachineSpec::threads_per_task_choices() const {
    // The paper measures 1, 2, 3, 6, 12 on JaguarPF/Yona; 1, 2, 3, 6, 12, 24
    // on Hopper II; 1, 2, 4, 8, 16 on Lens — i.e. 1, 2, then the divisor
    // ladder of the node's core count through powers of two of the socket
    // size.
    std::vector<int> out;
    const int cpn = cores_per_node();
    for (int t = 1; t <= cpn; ++t) {
        if (cpn % t != 0) continue;
        // 1, 2, 3 and whole multiples of the 6-core die (Cray/Yona), or the
        // power-of-two ladder on Lens's 4-core sockets.
        const bool die6 = cpn % 6 == 0;
        if (die6 ? (t <= 3 || t % 6 == 0) : ((t & (t - 1)) == 0))
            out.push_back(t);
    }
    return out;
}

}  // namespace advect::model
