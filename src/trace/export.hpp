#pragma once
/// \file export.hpp
/// Exporters over recorded spans: Chrome trace-event JSON (loadable in
/// chrome://tracing or Perfetto) and an overlap summary quantifying the
/// paper's thesis — how much of the step each resource lane was busy, how
/// much of that activity ran concurrently with each other lane, and how
/// much of the timeline each lane carried alone (its critical-path share).

#include <array>
#include <span>
#include <string>

#include "trace/span.hpp"

namespace advect::trace {

/// Render spans as Chrome trace-event JSON ("X" complete events). One
/// process per rank (rank -1 becomes the "shared" process 0); one named
/// thread row per (lane, team-thread/stream) pair so overlap is visible as
/// vertically stacked bars. Times are exported in microseconds.
[[nodiscard]] std::string to_chrome_json(std::span<const Span> spans);

/// Resource-concurrency accounting over one trace.
struct OverlapReport {
    double t_begin = 0.0;  ///< earliest span start
    double t_end = 0.0;    ///< latest span end
    /// Busy seconds per lane: measure of the union of the lane's spans.
    std::array<double, kLaneCount> busy{};
    /// Seconds each lane was busy while no *other* lane was (Host lane
    /// excluded from "other"): the lane's share of the critical path.
    std::array<double, kLaneCount> exclusive{};
    /// Pairwise concurrency: seconds lanes a and b were both busy.
    std::array<std::array<double, kLaneCount>, kLaneCount> pair{};
    /// Seconds at least one non-Host lane was busy.
    double union_busy = 0.0;
    /// Sum of non-Host busy seconds over union_busy: 1.0 = fully
    /// serialized, higher = overlapped (same statistic as
    /// sched::StepReport::overlap_factor, measured instead of modelled).
    double overlap_factor = 0.0;
    std::size_t span_count = 0;
    /// Chaos-injected time: the union of "chaos"-category spans
    /// (docs/CHAOS.md). Injected stalls are not work, so these spans are
    /// excluded from the per-lane accounting above — a held message is not
    /// NIC busy time — and measured separately here.
    double injected = 0.0;
    /// Injected seconds during which some non-Host lane *not itself
    /// carrying an active injection* was doing real (non-chaos) work: the
    /// part of the injection the overlap structure hid. The same-lane
    /// exclusion matters because blocking waits are recorded as lane
    /// activity — a recv stalled on a delayed message shows as NIC busy,
    /// and must not count as the work that hid the stall it suffered.
    double injected_hidden = 0.0;

    [[nodiscard]] double busy_of(Lane lane) const {
        return busy[static_cast<std::size_t>(lane)];
    }
    [[nodiscard]] double pair_seconds(Lane a, Lane b) const {
        return pair[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
    }
    /// Concurrency fraction of a lane pair: both-busy seconds over the
    /// smaller of the two busy times. 0 = never concurrent, 1 = the less
    /// busy lane ran entirely under the busier one. 0 when either is idle.
    [[nodiscard]] double pair_fraction(Lane a, Lane b) const;
    /// Fraction of injected time hidden under real work; 1.0 when nothing
    /// was injected (the chaos::absorbed_fraction statistic, per report).
    [[nodiscard]] double absorbed() const {
        return injected > 0.0 ? injected_hidden / injected : 1.0;
    }
};

/// Sweep-line accounting over the spans (any order accepted).
[[nodiscard]] OverlapReport summarize(std::span<const Span> spans);

/// Same accounting restricted to one rank's spans (spans with a different
/// rank id are ignored; rank -1 spans only match a -1 filter).
[[nodiscard]] OverlapReport summarize_rank(std::span<const Span> spans,
                                           int rank);

/// Mean per-rank concurrency fraction of a lane pair. Aggregated lanes
/// would credit rank A's NIC activity against rank B's PCIe activity —
/// meaningless drift overlap; this statistic instead measures the pair
/// within each rank separately and averages over the ranks where both
/// lanes ran. This is the paper's overlap thesis as one number per
/// implementation: ~0 for the bulk-synchronous §IV-F step, high for the
/// fully overlapped §IV-I step.
[[nodiscard]] double mean_rank_pair_fraction(std::span<const Span> spans,
                                             Lane a, Lane b);

/// Fixed-width terminal rendering of a report: per-lane busy/exclusive
/// bars, the overlap factor and the interesting lane pairs.
[[nodiscard]] std::string format_summary(const OverlapReport& report);

}  // namespace advect::trace
