#pragma once
/// \file span.hpp
/// Runtime trace spans for the execution layer (docs/OBSERVABILITY.md).
///
/// The paper's argument is about which resources are busy *concurrently*
/// (CPU cores, NIC, PCIe link, GPU); this recorder makes that measurable on
/// the real substrates, not just the DES model. Each span is one interval
/// of activity on one resource lane, stamped with the logical rank, team
/// thread and device stream that produced it. The recorder is:
///
///  * disabled by default, and zero-cost when disabled: every choke point
///    checks one relaxed atomic load and returns;
///  * thread-sharded: each recording thread appends to its own bounded
///    shard behind its own (uncontended) mutex, so instrumentation never
///    serializes the ranks/teams/streams it is observing;
///  * bounded: a shard that fills up drops further spans and counts them,
///    so tracing a long run degrades instead of exhausting memory.
///
/// Spans from every shard are merged by snapshot() and fed to the exporters
/// in export.hpp (Chrome trace-event JSON, overlap summary).

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace advect::trace {

/// The resource a span occupied, mirroring the DES node model's resources
/// ("cpu", "nic", "pcie", "gpu") plus a Host lane for driver-side phases,
/// waits and synchronizations that occupy no modelled resource.
enum class Lane : std::uint8_t { Host = 0, Cpu, Nic, Pcie, Gpu };
inline constexpr std::size_t kLaneCount = 5;

/// Lane name as used by the exporters and the DES resource mapping.
[[nodiscard]] const char* lane_name(Lane lane);
/// Inverse of lane_name; unknown names map to Lane::Host.
[[nodiscard]] Lane lane_from_name(const std::string& name);

/// One completed interval of activity.
struct Span {
    std::string name;           ///< operation, e.g. "kernel", "isend"
    const char* category = ""; ///< subsystem: "msg", "omp", "gpu", "impl", "model"
    Lane lane = Lane::Host;
    double t0 = 0.0;            ///< seconds since the recorder epoch
    double t1 = 0.0;
    std::int32_t rank = -1;     ///< msg rank, -1 when unknown
    std::int32_t thread = -1;   ///< omp team thread id, -1 when n/a
    std::int32_t stream = -1;   ///< gpu stream id, -1 when n/a
};

namespace detail {
extern std::atomic<bool> g_enabled;
extern thread_local int t_mute;
}  // namespace detail

/// Whether spans are being recorded on the calling thread. Inline relaxed
/// load: the entire cost of instrumentation when tracing is off. The
/// thread-local mute depth (ScopedMute) is only consulted after the load,
/// so a muted scope costs nothing extra while tracing is off.
[[nodiscard]] inline bool enabled() {
    return detail::g_enabled.load(std::memory_order_relaxed) &&
           detail::t_mute == 0;
}

/// Turn recording on or off. Enabling for the first time (or after reset())
/// also pins the epoch all span times are relative to.
void set_enabled(bool on);

/// Drop all recorded spans and re-pin the epoch.
void reset();

/// Seconds since the recorder epoch (monotonic clock).
[[nodiscard]] double now();

/// The recorder epoch itself, as seconds on the monotonic clock's own
/// timeline (time_since_epoch). The clock is system-wide, so spans shipped
/// between processes (the socket transport's workers, impl/launch) can be
/// rebased onto one shared timeline: absolute time = epoch_seconds() + t.
[[nodiscard]] double epoch_seconds();

/// The calling thread's logical rank, attached to spans recorded without an
/// explicit rank. msg::run_ranks sets it on every rank thread; ThreadTeam
/// workers and gpu::Device executors inherit it from their creator.
void set_current_rank(int rank);
[[nodiscard]] int current_rank();

/// Record one completed span (no-op when disabled).
void record(Span span);

/// Convenience for spans timed by the caller.
void record(std::string name, const char* category, Lane lane, double t0,
            double t1, int rank = -1, int thread = -1, int stream = -1);

/// All spans recorded so far, merged across shards and sorted by t0.
[[nodiscard]] std::vector<Span> snapshot();

/// Spans dropped because a shard hit its capacity bound.
[[nodiscard]] std::size_t dropped();

/// RAII span over a scope. Captures the start time at construction and
/// records at destruction; inert when tracing is disabled at construction.
class ScopedSpan {
  public:
    /// `rank` defaults to the thread's current rank (see set_current_rank).
    ScopedSpan(const char* name, const char* category, Lane lane,
               int thread = -1, int stream = -1);
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;
    ~ScopedSpan();

  private:
    const char* name_;
    const char* category_;
    Lane lane_;
    std::int32_t rank_;
    std::int32_t thread_;
    std::int32_t stream_;
    double t0_ = -1.0;  ///< < 0 marks an inert span
};

/// RAII: suppress span recording on the calling thread while alive
/// (nestable). The msg collectives run their internal point-to-point
/// machinery under a mute so the trace keeps the one logical span
/// ("barrier", "allreduce_sum", ...) call sites have always produced.
/// Other threads — chaos delivery threads included — are unaffected.
class ScopedMute {
  public:
    ScopedMute() { ++detail::t_mute; }
    ~ScopedMute() { --detail::t_mute; }
    ScopedMute(const ScopedMute&) = delete;
    ScopedMute& operator=(const ScopedMute&) = delete;
};

}  // namespace advect::trace
