#include "trace/export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string_view>
#include <utility>
#include <vector>

namespace advect::trace {

namespace {

void append_escaped(std::string& out, const std::string& s) {
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
}

/// Process id: ranks become 1-based pids, unattributed spans share pid 0.
int pid_of(const Span& s) { return s.rank + 1; }

/// Thread row within the process: lanes stack top-down in enum order, and
/// within a lane each team thread / device stream gets its own row.
int tid_of(const Span& s) {
    const int sub = s.stream >= 0 ? s.stream + 1 : (s.thread >= 0 ? s.thread + 1 : 0);
    return static_cast<int>(s.lane) * 1024 + sub;
}

std::string row_name(const Span& s) {
    std::string name = lane_name(s.lane);
    if (s.stream >= 0)
        name += " stream " + std::to_string(s.stream);
    else if (s.thread >= 0)
        name += " thread " + std::to_string(s.thread);
    return name;
}

}  // namespace

std::string to_chrome_json(std::span<const Span> spans) {
    double t_min = 0.0;
    if (!spans.empty()) {
        t_min = spans.front().t0;
        for (const auto& s : spans) t_min = std::min(t_min, s.t0);
    }

    std::string out = "{\"traceEvents\":[";
    char buf[160];
    bool first = true;

    // Metadata: name processes and thread rows once each.
    std::map<int, bool> seen_pid;
    std::map<std::pair<int, int>, const Span*> seen_tid;
    for (const auto& s : spans) {
        seen_pid.emplace(pid_of(s), s.rank >= 0);
        seen_tid.emplace(std::make_pair(pid_of(s), tid_of(s)), &s);
    }
    for (const auto& [pid, is_rank] : seen_pid) {
        std::snprintf(buf, sizeof buf,
                      "%s{\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
                      "\"name\":\"process_name\",\"args\":{\"name\":\"%s\"}}",
                      first ? "" : ",", pid,
                      is_rank ? ("rank " + std::to_string(pid - 1)).c_str()
                              : "shared");
        out += buf;
        first = false;
    }
    for (const auto& [key, span] : seen_tid) {
        out += ",{\"ph\":\"M\",\"pid\":" + std::to_string(key.first) +
               ",\"tid\":" + std::to_string(key.second) +
               ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
        append_escaped(out, row_name(*span));
        out += "\"}}";
        // Keep lanes in enum order inside each process.
        out += ",{\"ph\":\"M\",\"pid\":" + std::to_string(key.first) +
               ",\"tid\":" + std::to_string(key.second) +
               ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" +
               std::to_string(key.second) + "}}";
        first = false;
    }

    for (const auto& s : spans) {
        out += first ? "{" : ",{";
        first = false;
        out += "\"ph\":\"X\",\"name\":\"";
        append_escaped(out, s.name);
        out += "\",\"cat\":\"";
        append_escaped(out, s.category);
        std::snprintf(buf, sizeof buf,
                      "\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f",
                      pid_of(s), tid_of(s), (s.t0 - t_min) * 1e6,
                      (s.t1 - s.t0) * 1e6);
        out += buf;
        std::snprintf(buf, sizeof buf,
                      ",\"args\":{\"lane\":\"%s\",\"rank\":%d,\"thread\":%d,"
                      "\"stream\":%d}}",
                      lane_name(s.lane), s.rank, s.thread, s.stream);
        out += buf;
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

double OverlapReport::pair_fraction(Lane a, Lane b) const {
    const double lo = std::min(busy_of(a), busy_of(b));
    if (lo <= 0.0) return 0.0;
    return pair_seconds(a, b) / lo;
}

OverlapReport summarize(std::span<const Span> spans) {
    OverlapReport r;
    r.span_count = spans.size();
    if (spans.empty()) return r;

    // Sweep line: +1/-1 events per lane, processed in time order with ends
    // before starts at equal times (zero-length spans contribute nothing).
    // Chaos-injected spans share the timeline but are tracked separately,
    // per lane: they count as injected time, never as lane work — and they
    // taint their own lane, because the runtime records blocking waits as
    // that lane's activity (a recv stalled on a delayed message shows as
    // NIC busy). Injected time only counts as hidden while a lane *not*
    // carrying an active injection does real work: that is the paper's
    // absorption story (computation continues while communication stalls),
    // and it keeps the measured statistic honest against the DES model,
    // which would otherwise disagree with a runtime that credits the stall
    // it injected as the work that hid it.
    struct Ev {
        double t;
        int delta;
        std::size_t lane;
        bool chaos;
    };
    std::vector<Ev> evs;
    evs.reserve(spans.size() * 2);
    r.t_begin = spans.front().t0;
    r.t_end = spans.front().t1;
    for (const auto& s : spans) {
        const auto l = static_cast<std::size_t>(s.lane);
        const bool chaos = std::string_view(s.category) == "chaos";
        evs.push_back({s.t0, +1, l, chaos});
        evs.push_back({s.t1, -1, l, chaos});
        r.t_begin = std::min(r.t_begin, s.t0);
        r.t_end = std::max(r.t_end, s.t1);
    }
    std::sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
        if (a.t != b.t) return a.t < b.t;
        return a.delta < b.delta;
    });

    std::array<int, kLaneCount> active{};
    std::array<int, kLaneCount> chaos_active{};
    const auto host = static_cast<std::size_t>(Lane::Host);
    double prev = evs.front().t;
    for (const auto& ev : evs) {
        const double dt = ev.t - prev;
        if (dt > 0.0) {
            int non_host_busy = 0;
            bool any_chaos = false;
            bool hiding_work = false;
            for (std::size_t l = 0; l < kLaneCount; ++l) {
                if (chaos_active[l] > 0) any_chaos = true;
                if (l != host && active[l] > 0) {
                    ++non_host_busy;
                    if (chaos_active[l] == 0) hiding_work = true;
                }
            }
            if (non_host_busy > 0) r.union_busy += dt;
            if (any_chaos) {
                r.injected += dt;
                if (hiding_work) r.injected_hidden += dt;
            }
            for (std::size_t l = 0; l < kLaneCount; ++l) {
                if (active[l] <= 0) continue;
                r.busy[l] += dt;
                const int others =
                    non_host_busy - (l != host && active[l] > 0 ? 1 : 0);
                if (others == 0) r.exclusive[l] += dt;
                for (std::size_t m = l + 1; m < kLaneCount; ++m)
                    if (active[m] > 0) {
                        r.pair[l][m] += dt;
                        r.pair[m][l] += dt;
                    }
            }
        }
        (ev.chaos ? chaos_active : active)[ev.lane] += ev.delta;
        prev = ev.t;
    }

    double busy_sum = 0.0;
    for (std::size_t l = 0; l < kLaneCount; ++l)
        if (l != host) busy_sum += r.busy[l];
    r.overlap_factor = r.union_busy > 0.0 ? busy_sum / r.union_busy : 0.0;
    return r;
}

OverlapReport summarize_rank(std::span<const Span> spans, int rank) {
    std::vector<Span> mine;
    for (const auto& s : spans)
        if (s.rank == rank) mine.push_back(s);
    return summarize(mine);
}

double mean_rank_pair_fraction(std::span<const Span> spans, Lane a, Lane b) {
    std::vector<int> ranks;
    for (const auto& s : spans)
        if (s.rank >= 0 &&
            std::find(ranks.begin(), ranks.end(), s.rank) == ranks.end())
            ranks.push_back(s.rank);
    double sum = 0.0;
    int counted = 0;
    for (int r : ranks) {
        const auto report = summarize_rank(spans, r);
        if (report.busy_of(a) <= 0.0 || report.busy_of(b) <= 0.0) continue;
        sum += report.pair_fraction(a, b);
        ++counted;
    }
    return counted > 0 ? sum / counted : 0.0;
}

std::string format_summary(const OverlapReport& report) {
    std::string out;
    char buf[160];
    const double wall = report.t_end - report.t_begin;
    std::snprintf(buf, sizeof buf,
                  "trace: %zu spans over %.3f ms, overlap factor %.2f\n",
                  report.span_count, wall * 1e3, report.overlap_factor);
    out += buf;
    if (report.injected > 0.0) {
        std::snprintf(buf, sizeof buf,
                      "  chaos injected %.3f ms, hidden under work %.3f ms "
                      "(absorbed %.0f%%)\n",
                      report.injected * 1e3, report.injected_hidden * 1e3,
                      report.absorbed() * 100.0);
        out += buf;
    }
    for (std::size_t l = 0; l < kLaneCount; ++l) {
        const auto lane = static_cast<Lane>(l);
        const double busy = report.busy[l];
        if (busy <= 0.0) continue;
        const double frac = wall > 0.0 ? busy / wall : 0.0;
        const int bars =
            static_cast<int>(std::min(1.0, frac) * 40.0 + 0.5);
        std::snprintf(buf, sizeof buf,
                      "  %-5s %7.3f ms busy (%5.1f%%) |%.*s%*s| "
                      "exclusive %.3f ms\n",
                      lane_name(lane), busy * 1e3, frac * 100.0, bars,
                      "########################################", 40 - bars,
                      "", report.exclusive[l] * 1e3);
        out += buf;
    }
    static constexpr std::pair<Lane, Lane> kPairs[] = {
        {Lane::Cpu, Lane::Nic},  {Lane::Cpu, Lane::Gpu},
        {Lane::Cpu, Lane::Pcie}, {Lane::Nic, Lane::Pcie},
        {Lane::Nic, Lane::Gpu},  {Lane::Pcie, Lane::Gpu},
    };
    for (const auto& [a, b] : kPairs) {
        if (report.busy_of(a) <= 0.0 || report.busy_of(b) <= 0.0) continue;
        std::snprintf(buf, sizeof buf,
                      "  %s+%s concurrent %.3f ms (%.0f%% of the lesser)\n",
                      lane_name(a), lane_name(b), report.pair_seconds(a, b) * 1e3,
                      report.pair_fraction(a, b) * 100.0);
        out += buf;
    }
    return out;
}

}  // namespace advect::trace
