#include "trace/span.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

namespace advect::trace {

namespace detail {

std::atomic<bool> g_enabled{false};
thread_local int t_mute = 0;

namespace {

using Clock = std::chrono::steady_clock;

/// Spans one shard may hold before it starts dropping (~6 MB of strings and
/// PODs at the default span size; plenty for the repo's step counts).
constexpr std::size_t kShardCapacity = 1u << 16;

struct Shard {
    std::mutex mu;
    std::vector<Span> spans;
    std::size_t dropped = 0;
};

struct Registry {
    std::mutex mu;
    std::vector<std::shared_ptr<Shard>> shards;
    Clock::time_point epoch = Clock::now();
};

Registry& registry() {
    static Registry* r = new Registry;  // leaked: recorder outlives threads
    return *r;
}

thread_local std::shared_ptr<Shard> t_shard;
thread_local int t_rank = -1;

Shard& shard() {
    if (!t_shard) {
        t_shard = std::make_shared<Shard>();
        auto& reg = registry();
        std::lock_guard lock(reg.mu);
        reg.shards.push_back(t_shard);
    }
    return *t_shard;
}

}  // namespace
}  // namespace detail

const char* lane_name(Lane lane) {
    switch (lane) {
        case Lane::Host: return "host";
        case Lane::Cpu: return "cpu";
        case Lane::Nic: return "nic";
        case Lane::Pcie: return "pcie";
        case Lane::Gpu: return "gpu";
    }
    return "host";
}

Lane lane_from_name(const std::string& name) {
    if (name == "cpu") return Lane::Cpu;
    if (name == "nic") return Lane::Nic;
    if (name == "pcie") return Lane::Pcie;
    if (name == "gpu") return Lane::Gpu;
    return Lane::Host;
}

void set_enabled(bool on) {
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

void reset() {
    auto& reg = detail::registry();
    std::lock_guard lock(reg.mu);
    for (auto& s : reg.shards) {
        std::lock_guard slock(s->mu);
        s->spans.clear();
        s->dropped = 0;
    }
    reg.epoch = detail::Clock::now();
}

double now() {
    // Registry construction pins the epoch; taking the registry reference
    // here keeps first-use ordering correct without locking.
    auto& reg = detail::registry();
    return std::chrono::duration<double>(detail::Clock::now() - reg.epoch)
        .count();
}

double epoch_seconds() {
    auto& reg = detail::registry();
    std::lock_guard lock(reg.mu);
    return std::chrono::duration<double>(reg.epoch.time_since_epoch())
        .count();
}

void set_current_rank(int rank) { detail::t_rank = rank; }

int current_rank() { return detail::t_rank; }

void record(Span span) {
    if (!enabled()) return;
    auto& s = detail::shard();
    std::lock_guard lock(s.mu);
    if (s.spans.size() >= detail::kShardCapacity) {
        ++s.dropped;
        return;
    }
    s.spans.push_back(std::move(span));
}

void record(std::string name, const char* category, Lane lane, double t0,
            double t1, int rank, int thread, int stream) {
    if (!enabled()) return;
    Span s;
    s.name = std::move(name);
    s.category = category;
    s.lane = lane;
    s.t0 = t0;
    s.t1 = t1;
    s.rank = rank;
    s.thread = thread;
    s.stream = stream;
    record(std::move(s));
}

std::vector<Span> snapshot() {
    std::vector<Span> out;
    auto& reg = detail::registry();
    std::lock_guard lock(reg.mu);
    for (auto& s : reg.shards) {
        std::lock_guard slock(s->mu);
        out.insert(out.end(), s->spans.begin(), s->spans.end());
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Span& a, const Span& b) { return a.t0 < b.t0; });
    return out;
}

std::size_t dropped() {
    std::size_t n = 0;
    auto& reg = detail::registry();
    std::lock_guard lock(reg.mu);
    for (auto& s : reg.shards) {
        std::lock_guard slock(s->mu);
        n += s->dropped;
    }
    return n;
}

ScopedSpan::ScopedSpan(const char* name, const char* category, Lane lane,
                       int thread, int stream)
    : name_(name),
      category_(category),
      lane_(lane),
      rank_(detail::t_rank),
      thread_(thread),
      stream_(stream) {
    if (enabled()) t0_ = now();
}

ScopedSpan::~ScopedSpan() {
    if (t0_ < 0.0 || !enabled()) return;
    record(name_, category_, lane_, t0_, now(), rank_, thread_, stream_);
}

}  // namespace advect::trace
