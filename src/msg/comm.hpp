#pragma once
/// \file comm.hpp
/// The communicator and rank runtime. Ranks are threads within this process
/// (the "cluster in a process" substitution documented in DESIGN.md §2);
/// the API mirrors the MPI subset the paper's implementations use:
/// nonblocking point-to-point with tags, waitall, barrier, and the small
/// collectives needed for verification (allreduce, broadcast).

#include <barrier>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "msg/mailbox.hpp"
#include "msg/request.hpp"

namespace advect::msg {

class Communicator;

/// Shared state of one "job": mailboxes, barrier, collective scratch.
class World {
  public:
    explicit World(int nranks);

    [[nodiscard]] int size() const { return nranks_; }
    [[nodiscard]] Mailbox& mailbox(int rank) {
        return mailboxes_[static_cast<std::size_t>(rank)];
    }

  private:
    friend class Communicator;
    int nranks_;
    std::vector<Mailbox> mailboxes_;
    std::barrier<> barrier_;
    std::vector<double> reduce_slots_;
    double bcast_slot_ = 0.0;
};

/// A rank's handle on the world. Cheap to copy within the rank's thread.
class Communicator {
  public:
    Communicator(World& world, int rank) : world_(&world), rank_(rank) {}

    [[nodiscard]] int rank() const { return rank_; }
    [[nodiscard]] int size() const { return world_->size(); }

    /// Nonblocking send: the payload is captured before returning (buffered
    /// semantics), so the returned request is already complete; it is
    /// provided so call sites read like their MPI counterparts.
    Request isend(int dest, int tag, std::span<const double> data);
    /// Nonblocking receive into `out`; completes when a matching message has
    /// been copied in. `out` must stay valid and untouched until wait().
    [[nodiscard]] Request irecv(int src, int tag, std::span<double> out);

    /// Blocking convenience wrappers.
    void send(int dest, int tag, std::span<const double> data);
    void recv(int src, int tag, std::span<double> out);
    /// recv with a deadline: throws TimeoutError if no matching message
    /// arrives within `timeout_seconds`. The posted receive stays pending
    /// (as in MPI, a receive cannot be cancelled for free), so a later
    /// matching message will still land in `out` — keep it alive.
    void recv(int src, int tag, std::span<double> out, double timeout_seconds);

    /// Synchronise all ranks.
    void barrier();

    /// Sum / max of one value per rank, returned on every rank.
    [[nodiscard]] double allreduce_sum(double value);
    [[nodiscard]] double allreduce_max(double value);
    /// Broadcast `value` from `root` to all ranks.
    [[nodiscard]] double broadcast(double value, int root);

  private:
    World* world_;
    int rank_;
};

/// Launch `nranks` rank threads running `rank_main` and join them. The first
/// exception thrown by any rank is rethrown here after all ranks finish or
/// unwind. This is the `mpirun` of the substrate.
void run_ranks(int nranks,
               const std::function<void(Communicator&)>& rank_main);

}  // namespace advect::msg
