#pragma once
/// \file comm.hpp
/// The communicator and rank runtime. The API mirrors the MPI subset the
/// paper's implementations use: nonblocking point-to-point with tags,
/// waitall, barrier, and the small collectives needed for verification
/// (allreduce, broadcast). Every operation goes through a Transport
/// (msg/transport/transport.hpp): in-process mailboxes when ranks are
/// threads sharing a World (the "cluster in a process" substitution,
/// DESIGN.md §2), or a socket mesh when ranks are processes
/// (docs/TRANSPORT.md).
///
/// Collectives are implemented as messages over the transport (a flat
/// gather/release tree through a root) on reserved system tags, so they
/// behave identically on every backend, appear at chaos injection sites
/// ("allreduce_sum", ...), and support deadlines: the timed overloads throw
/// CollectiveTimeoutError naming the stalled phase and rank instead of
/// hanging when a drop scenario swallows collective traffic.

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "msg/mailbox.hpp"
#include "msg/request.hpp"
#include "msg/transport/transport.hpp"

namespace advect::msg {

/// Shared state of one in-process "job": one mailbox per rank thread.
class World {
  public:
    explicit World(int nranks);

    [[nodiscard]] int size() const { return nranks_; }
    [[nodiscard]] Mailbox& mailbox(int rank) {
        return mailboxes_[static_cast<std::size_t>(rank)];
    }

  private:
    int nranks_;
    std::vector<Mailbox> mailboxes_;
};

/// A rank's handle on the job. Cheap to copy within the rank's thread.
class Communicator {
  public:
    /// In-process rank handle (ranks as threads; the default substrate).
    Communicator(World& world, int rank);
    /// Rank handle over an explicit transport (socket-backend workers).
    explicit Communicator(Transport& transport)
        : transport_(&transport), rank_(transport.rank()) {}

    [[nodiscard]] int rank() const { return rank_; }
    [[nodiscard]] int size() const { return transport_->size(); }
    [[nodiscard]] Transport& transport() const { return *transport_; }

    /// Nonblocking send: the payload is captured before returning (buffered
    /// semantics), so the returned request is already complete; it is
    /// provided so call sites read like their MPI counterparts. `tag` must
    /// be below kSystemTagBase.
    Request isend(int dest, int tag, std::span<const double> data);
    /// Nonblocking receive into `out`; completes when a matching message has
    /// been copied in. `out` must stay valid and untouched until wait().
    [[nodiscard]] Request irecv(int src, int tag, std::span<double> out);

    /// Blocking convenience wrappers.
    void send(int dest, int tag, std::span<const double> data);
    void recv(int src, int tag, std::span<double> out);
    /// recv with a deadline: throws TimeoutError if no matching message
    /// arrives within `timeout_seconds`. The posted receive stays pending
    /// (as in MPI, a receive cannot be cancelled for free), so a later
    /// matching message will still land in `out` — keep it alive.
    void recv(int src, int tag, std::span<double> out, double timeout_seconds);

    /// Synchronise all ranks.
    void barrier();

    /// Sum / max of one value per rank, returned on every rank, reduced in
    /// rank order (bitwise-reproducible). `timeout_seconds > 0` arms a
    /// deadline: CollectiveTimeoutError on expiry. Under an active chaos
    /// drop scenario the collective retransmits on the plan's receive
    /// timeout, like HaloExchange::wait_dim — a user deadline still wins.
    [[nodiscard]] double allreduce_sum(double value,
                                       double timeout_seconds = 0.0);
    [[nodiscard]] double allreduce_max(double value,
                                       double timeout_seconds = 0.0);
    /// Broadcast `value` from `root` to all ranks; same deadline contract.
    [[nodiscard]] double broadcast(double value, int root,
                                   double timeout_seconds = 0.0);

    /// Release chaos-dropped sends job-wide (every process's session). The
    /// timeout-retry loops (HaloExchange::wait_dim, the collectives) call
    /// this; prefer it over chaos::request_retransmits(), which only
    /// reaches the calling process.
    void request_retransmits() { transport_->request_retransmits(); }

  private:
    enum class Collective { Sum, Max, Bcast };

    double rendezvous(const char* op, Collective kind, double value, int root,
                      double timeout_seconds);
    /// Wait on `req` under the collective deadline discipline: slice waits
    /// by the chaos receive timeout (requesting retransmits between
    /// slices), and convert expiry of `deadline` (absolute monotonic
    /// seconds, +inf = none) into CollectiveTimeoutError.
    void await(Request& req, const char* op, const std::string& phase,
               double deadline);

    std::shared_ptr<Transport> owned_;  ///< set by the in-process ctor
    Transport* transport_;
    int rank_;
};

/// Launch `nranks` rank threads running `rank_main` and join them. The first
/// exception thrown by any rank is rethrown here after all ranks finish or
/// unwind. This is the `mpirun` of the in-process substrate; the socket
/// counterpart is run_process_ranks (msg/transport/process.hpp).
void run_ranks(int nranks,
               const std::function<void(Communicator&)>& rank_main);

}  // namespace advect::msg
