#include "msg/comm.hpp"

#include <algorithm>
#include <cassert>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "chaos/inject.hpp"
#include "trace/span.hpp"

namespace advect::msg {

World::World(int nranks)
    : nranks_(nranks),
      mailboxes_(static_cast<std::size_t>(nranks)),
      barrier_(nranks),
      reduce_slots_(static_cast<std::size_t>(nranks), 0.0) {
    if (nranks < 1) throw std::invalid_argument("World: nranks must be >= 1");
}

Request Communicator::isend(int dest, int tag, std::span<const double> data) {
    assert(dest >= 0 && dest < size());
    trace::ScopedSpan span("isend", "msg", trace::Lane::Nic);
    // Chaos injection point: the active session may take over delivery
    // (delay, drop-until-retransmit, or FIFO-queue behind an earlier
    // perturbed send on this channel). The payload is copied into the
    // closure, preserving buffered-send semantics either way.
    if (chaos::active() &&
        chaos::on_send(rank_, dest,
                       [mb = &world_->mailbox(dest), src = rank_, tag,
                        payload = std::vector<double>(data.begin(),
                                                      data.end())] {
                           mb->deliver(src, tag, payload);
                       }))
        return Request{};
    world_->mailbox(dest).deliver(rank_, tag, data);
    return Request{};  // buffered send: complete on return
}

Request Communicator::irecv(int src, int tag, std::span<double> out) {
    assert(src == kAnySource || (src >= 0 && src < size()));
    return world_->mailbox(rank_).post_receive(src, tag, out);
}

void Communicator::send(int dest, int tag, std::span<const double> data) {
    isend(dest, tag, data).wait();
}

void Communicator::recv(int src, int tag, std::span<double> out) {
    irecv(src, tag, out).wait();
}

void Communicator::recv(int src, int tag, std::span<double> out,
                        double timeout_seconds) {
    irecv(src, tag, out).wait(timeout_seconds);
}

void Communicator::barrier() {
    trace::ScopedSpan span("barrier", "msg", trace::Lane::Host);
    world_->barrier_.arrive_and_wait();
}

double Communicator::allreduce_sum(double value) {
    trace::ScopedSpan span("allreduce_sum", "msg", trace::Lane::Host);
    world_->reduce_slots_[static_cast<std::size_t>(rank_)] = value;
    barrier();
    double sum = 0.0;
    for (double v : world_->reduce_slots_) sum += v;
    barrier();  // nobody overwrites slots until everyone has read
    return sum;
}

double Communicator::allreduce_max(double value) {
    trace::ScopedSpan span("allreduce_max", "msg", trace::Lane::Host);
    world_->reduce_slots_[static_cast<std::size_t>(rank_)] = value;
    barrier();
    double mx = world_->reduce_slots_[0];
    for (double v : world_->reduce_slots_) mx = std::max(mx, v);
    barrier();
    return mx;
}

double Communicator::broadcast(double value, int root) {
    if (rank_ == root) world_->bcast_slot_ = value;
    barrier();
    const double out = world_->bcast_slot_;
    barrier();
    return out;
}

void run_ranks(int nranks,
               const std::function<void(Communicator&)>& rank_main) {
    World world(nranks);
    std::exception_ptr first_error;
    std::mutex error_mu;
    {
        std::vector<std::jthread> threads;
        threads.reserve(static_cast<std::size_t>(nranks));
        for (int r = 0; r < nranks; ++r) {
            threads.emplace_back([&world, &rank_main, &first_error, &error_mu,
                                  r] {
                trace::set_current_rank(r);
                Communicator comm(world, r);
                try {
                    rank_main(comm);
                } catch (...) {
                    // A rank that throws while peers block in a collective is
                    // a program error (as in MPI); well-formed tests throw on
                    // all ranks or none.
                    std::lock_guard lock(error_mu);
                    if (!first_error) first_error = std::current_exception();
                }
            });
        }
    }
    if (first_error) std::rethrow_exception(first_error);
}

}  // namespace advect::msg
