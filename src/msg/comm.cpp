#include "msg/comm.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "chaos/inject.hpp"
#include "msg/transport/inproc.hpp"
#include "trace/span.hpp"

namespace advect::msg {

namespace {

/// Reserved tags for the collective rendezvous (see kSystemTagBase): every
/// reduction gathers through rank 0 and releases the result; broadcast
/// releases from its root; barrier is a zero-payload reduction. One
/// gather/release tag pair suffices because all ranks execute the same
/// collective sequence and each (src, dst, tag) channel is FIFO.
constexpr int kTagGather = kSystemTagBase + 0;
constexpr int kTagRelease = kSystemTagBase + 1;

/// Bound on retransmit attempts per wait, mirroring HaloExchange::wait_dim:
/// only guards against a mis-specified chaos scenario.
constexpr int kMaxRetransmitAttempts = 1000;

double monotonic_now() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

World::World(int nranks)
    : nranks_(nranks), mailboxes_(static_cast<std::size_t>(nranks)) {
    if (nranks < 1) throw std::invalid_argument("World: nranks must be >= 1");
}

Communicator::Communicator(World& world, int rank)
    : owned_(std::make_shared<InProcessTransport>(world, rank)),
      transport_(owned_.get()),
      rank_(rank) {}

Request Communicator::isend(int dest, int tag, std::span<const double> data) {
    assert(dest >= 0 && dest < size());
    trace::ScopedSpan span("isend", "msg", trace::Lane::Nic);
    // Chaos injection point: the active session may take over delivery
    // (delay, drop-until-retransmit, or FIFO-queue behind an earlier
    // perturbed send on this channel). The payload is copied into the
    // closure, preserving buffered-send semantics either way.
    if (chaos::active() &&
        chaos::on_send(rank_, dest,
                       [t = transport_, dest, tag,
                        payload = std::vector<double>(data.begin(),
                                                      data.end())] {
                           t->deliver(dest, tag, payload);
                       }))
        return Request{};
    transport_->deliver(dest, tag, data);
    return Request{};  // buffered send: complete on return
}

Request Communicator::irecv(int src, int tag, std::span<double> out) {
    assert(src == kAnySource || (src >= 0 && src < size()));
    return transport_->mailbox().post_receive(src, tag, out);
}

void Communicator::send(int dest, int tag, std::span<const double> data) {
    isend(dest, tag, data).wait();
}

void Communicator::recv(int src, int tag, std::span<double> out) {
    irecv(src, tag, out).wait();
}

void Communicator::recv(int src, int tag, std::span<double> out,
                        double timeout_seconds) {
    irecv(src, tag, out).wait(timeout_seconds);
}

void Communicator::await(Request& req, const char* op,
                         const std::string& phase, double deadline) {
    const double chaos_timeout = chaos::recv_timeout_seconds();
    if (!std::isfinite(deadline) && chaos_timeout <= 0.0) {
        req.wait();
        return;
    }
    int attempts = 0;
    for (;;) {
        double budget = std::numeric_limits<double>::infinity();
        if (std::isfinite(deadline)) {
            budget = deadline - monotonic_now();
            if (budget <= 0.0)
                throw CollectiveTimeoutError(op, phase, rank_);
        }
        const double slice =
            chaos_timeout > 0.0 ? std::min(budget, chaos_timeout) : budget;
        try {
            req.wait(slice);
            return;
        } catch (const TimeoutError&) {
            if (std::isfinite(deadline) && monotonic_now() >= deadline)
                throw CollectiveTimeoutError(op, phase, rank_);
            // A chaos drop scenario is active (or the slice undershot the
            // deadline): release held sends job-wide and wait again.
            if (chaos_timeout > 0.0) {
                if (++attempts > kMaxRetransmitAttempts) throw;
                request_retransmits();
            }
        }
    }
}

double Communicator::rendezvous(const char* op, Collective kind, double value,
                                int root, double timeout_seconds) {
    // One logical span per collective; the point-to-point machinery below
    // runs muted so call sites keep the trace shape they always had.
    trace::ScopedSpan span(op, "msg", trace::Lane::Host);
    trace::ScopedMute mute;
    // Fault rules target collective traffic by the collective's name.
    chaos::ScopedMsgSite site(op);

    const double deadline =
        timeout_seconds > 0.0 ? monotonic_now() + timeout_seconds
                              : std::numeric_limits<double>::infinity();
    const int n = size();

    if (kind == Collective::Bcast) {
        if (n == 1 || rank_ == root) {
            for (int r = 0; r < n; ++r)
                if (r != root) isend(r, kTagRelease, {&value, 1});
            return value;
        }
        double got = 0.0;
        Request req = irecv(root, kTagRelease, {&got, 1});
        await(req, op, "release", deadline);
        return got;
    }

    // Sum/Max gather through rank 0, which reduces in rank order — the
    // bitwise-reproducible order verification depends on — and releases the
    // result to every rank.
    if (n == 1) return value;
    if (rank_ == 0) {
        std::vector<double> vals(static_cast<std::size_t>(n), 0.0);
        vals[0] = value;
        std::vector<Request> reqs;
        reqs.reserve(static_cast<std::size_t>(n) - 1);
        for (int r = 1; r < n; ++r)
            reqs.push_back(
                irecv(r, kTagGather, {&vals[static_cast<std::size_t>(r)], 1}));
        for (int r = 1; r < n; ++r)
            await(reqs[static_cast<std::size_t>(r - 1)], op,
                  "gather from rank " + std::to_string(r), deadline);
        double result;
        if (kind == Collective::Sum) {
            result = 0.0;
            for (double v : vals) result += v;
        } else {
            result = vals[0];
            for (double v : vals) result = std::max(result, v);
        }
        for (int r = 1; r < n; ++r) isend(r, kTagRelease, {&result, 1});
        return result;
    }
    isend(0, kTagGather, {&value, 1});
    double result = 0.0;
    Request req = irecv(0, kTagRelease, {&result, 1});
    await(req, op, "release", deadline);
    return result;
}

void Communicator::barrier() {
    // A zero-valued, untimed reduction: every rank blocks until all have
    // arrived at rank 0 and been released. Rides the same chaos-visible
    // path as the other collectives, so drop scenarios perturb it and the
    // retransmit-on-timeout loop recovers it, on every backend alike.
    trace::ScopedSpan span("barrier", "msg", trace::Lane::Host);
    trace::ScopedMute mute;
    chaos::ScopedMsgSite site("barrier");
    const double no_deadline = std::numeric_limits<double>::infinity();
    const int n = size();
    if (n == 1) return;
    double token = 0.0;
    if (rank_ == 0) {
        std::vector<double> slots(static_cast<std::size_t>(n), 0.0);
        std::vector<Request> reqs;
        reqs.reserve(static_cast<std::size_t>(n) - 1);
        for (int r = 1; r < n; ++r)
            reqs.push_back(irecv(r, kTagGather,
                                 {&slots[static_cast<std::size_t>(r)], 1}));
        for (int r = 1; r < n; ++r)
            await(reqs[static_cast<std::size_t>(r - 1)], "barrier",
                  "gather from rank " + std::to_string(r), no_deadline);
        for (int r = 1; r < n; ++r) isend(r, kTagRelease, {&token, 1});
        return;
    }
    isend(0, kTagGather, {&token, 1});
    Request req = irecv(0, kTagRelease, {&token, 1});
    await(req, "barrier", "release", no_deadline);
}

double Communicator::allreduce_sum(double value, double timeout_seconds) {
    return rendezvous("allreduce_sum", Collective::Sum, value, 0,
                      timeout_seconds);
}

double Communicator::allreduce_max(double value, double timeout_seconds) {
    return rendezvous("allreduce_max", Collective::Max, value, 0,
                      timeout_seconds);
}

double Communicator::broadcast(double value, int root,
                               double timeout_seconds) {
    assert(root >= 0 && root < size());
    return rendezvous("broadcast", Collective::Bcast, value, root,
                      timeout_seconds);
}

void run_ranks(int nranks,
               const std::function<void(Communicator&)>& rank_main) {
    World world(nranks);
    std::exception_ptr first_error;
    std::mutex error_mu;
    {
        std::vector<std::jthread> threads;
        threads.reserve(static_cast<std::size_t>(nranks));
        for (int r = 0; r < nranks; ++r) {
            threads.emplace_back([&world, &rank_main, &first_error, &error_mu,
                                  r] {
                trace::set_current_rank(r);
                Communicator comm(world, r);
                try {
                    rank_main(comm);
                } catch (...) {
                    // A rank that throws while peers block in a collective is
                    // a program error (as in MPI); well-formed tests throw on
                    // all ranks or none.
                    std::lock_guard lock(error_mu);
                    if (!first_error) first_error = std::current_exception();
                }
            });
        }
    }
    if (first_error) std::rethrow_exception(first_error);
}

}  // namespace advect::msg
