#pragma once
/// \file request.hpp
/// Completion handles with MPI nonblocking semantics: an operation returns a
/// Request immediately; the data involved may not be touched until wait()
/// (or a successful test()) — exactly the contract the paper's nonblocking
/// overlap implementation (§IV-C) is written against.

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>

namespace advect::msg {

/// A deadline expired before the awaited operation completed. `index()` is
/// the position of the stalled request within a wait_all span (0 for a
/// single wait/recv). The request itself is still pending and may be waited
/// on again — chaos drop scenarios catch this, trigger retransmission, and
/// retry (impl::HaloExchange::wait_dim).
class TimeoutError : public std::runtime_error {
  public:
    explicit TimeoutError(std::size_t index)
        : std::runtime_error("msg: wait deadline expired (request " +
                             std::to_string(index) + " still pending)"),
          index_(index) {}

    [[nodiscard]] std::size_t index() const { return index_; }

  protected:
    TimeoutError(const std::string& what, std::size_t index)
        : std::runtime_error(what), index_(index) {}

  private:
    std::size_t index_;
};

/// A collective's deadline expired: names the collective, the internal
/// phase that stalled ("gather from rank 2", "release") and the rank that
/// gave up. Thrown by the timed allreduce_sum/allreduce_max/broadcast
/// overloads; the collective's internal receives stay pending, so under a
/// chaos drop scenario a caller may request retransmission and retry,
/// exactly like point-to-point.
class CollectiveTimeoutError : public TimeoutError {
  public:
    CollectiveTimeoutError(std::string op, std::string phase, int rank)
        : TimeoutError("msg: " + op + " deadline expired on rank " +
                           std::to_string(rank) + " (stalled in " + phase +
                           ")",
                       0),
          op_(std::move(op)),
          phase_(std::move(phase)),
          rank_(rank) {}

    /// The collective that stalled ("allreduce_sum", ...).
    [[nodiscard]] const std::string& op() const { return op_; }
    /// The internal phase that stalled ("gather from rank N", "release").
    [[nodiscard]] const std::string& phase() const { return phase_; }
    /// The rank whose deadline expired.
    [[nodiscard]] int rank() const { return rank_; }

  private:
    std::string op_;
    std::string phase_;
    int rank_;
};

namespace detail {

/// Shared completion state between the initiating rank and whichever rank's
/// call completes the operation.
struct RequestState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::size_t count = 0;  ///< doubles delivered (receives)

    /// Trace context stamped at post time (receives only): the span covering
    /// the request's open lifetime is recorded by complete(). Negative t0
    /// means tracing was off when the request was posted.
    double trace_t0 = -1.0;
    int trace_rank = -1;

    void complete(std::size_t delivered);
};

}  // namespace detail

/// Handle for a nonblocking send or receive. Default-constructed requests
/// are "null" and behave as already complete (like MPI_REQUEST_NULL).
class Request {
  public:
    Request() = default;
    explicit Request(std::shared_ptr<detail::RequestState> state)
        : state_(std::move(state)) {}

    /// Block until the operation completes.
    void wait();
    /// Block until the operation completes or `timeout_seconds` elapse;
    /// throws TimeoutError (index 0) on expiry, leaving the request pending
    /// and re-waitable.
    void wait(double timeout_seconds);
    /// Nonblocking completion poll.
    [[nodiscard]] bool test() const;
    /// Number of doubles delivered; valid after completion of a receive.
    [[nodiscard]] std::size_t count() const;

    /// Wait on every request in the span (MPI_Waitall).
    static void wait_all(std::span<Request> reqs);
    /// wait_all with a shared deadline `timeout_seconds` from now; throws
    /// TimeoutError naming the first request still pending at expiry.
    /// Requests completed before the throw stay completed.
    static void wait_all(std::span<Request> reqs, double timeout_seconds);

  private:
    std::shared_ptr<detail::RequestState> state_;
};

}  // namespace advect::msg
