#pragma once
/// \file request.hpp
/// Completion handles with MPI nonblocking semantics: an operation returns a
/// Request immediately; the data involved may not be touched until wait()
/// (or a successful test()) — exactly the contract the paper's nonblocking
/// overlap implementation (§IV-C) is written against.

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>

namespace advect::msg {

namespace detail {

/// Shared completion state between the initiating rank and whichever rank's
/// call completes the operation.
struct RequestState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::size_t count = 0;  ///< doubles delivered (receives)

    /// Trace context stamped at post time (receives only): the span covering
    /// the request's open lifetime is recorded by complete(). Negative t0
    /// means tracing was off when the request was posted.
    double trace_t0 = -1.0;
    int trace_rank = -1;

    void complete(std::size_t delivered);
};

}  // namespace detail

/// Handle for a nonblocking send or receive. Default-constructed requests
/// are "null" and behave as already complete (like MPI_REQUEST_NULL).
class Request {
  public:
    Request() = default;
    explicit Request(std::shared_ptr<detail::RequestState> state)
        : state_(std::move(state)) {}

    /// Block until the operation completes.
    void wait();
    /// Nonblocking completion poll.
    [[nodiscard]] bool test() const;
    /// Number of doubles delivered; valid after completion of a receive.
    [[nodiscard]] std::size_t count() const;

    /// Wait on every request in the span (MPI_Waitall).
    static void wait_all(std::span<Request> reqs);

  private:
    std::shared_ptr<detail::RequestState> state_;
};

}  // namespace advect::msg
