#include "msg/mailbox.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "trace/span.hpp"

namespace advect::msg {

void Mailbox::deliver(int src, int tag, std::span<const double> data) {
    std::shared_ptr<detail::RequestState> to_complete;
    std::size_t delivered = 0;
    {
        std::lock_guard lock(mu_);
        // Earliest matching posted receive wins (non-overtaking: posted_ is
        // scanned in post order).
        auto it = std::find_if(posted_.begin(), posted_.end(),
                               [&](const Posted& p) {
                                   return matches(p.src, p.tag, src, tag);
                               });
        if (it != posted_.end()) {
            if (it->out.size() < data.size())
                throw std::length_error(
                    "msg: receive buffer smaller than message");
            std::copy(data.begin(), data.end(), it->out.begin());
            to_complete = std::move(it->state);
            delivered = data.size();
            posted_.erase(it);
        } else {
            arrived_.push_back(
                Arrived{src, tag, std::vector<double>(data.begin(), data.end())});
        }
    }
    if (to_complete) to_complete->complete(delivered);
}

Request Mailbox::post_receive(int src, int tag, std::span<double> out) {
    auto state = std::make_shared<detail::RequestState>();
    if (trace::enabled()) {
        state->trace_t0 = trace::now();
        state->trace_rank = trace::current_rank();
    }
    std::vector<double> payload;  // move matched payload out of the lock
    bool matched = false;
    {
        std::lock_guard lock(mu_);
        auto it = std::find_if(arrived_.begin(), arrived_.end(),
                               [&](const Arrived& m) {
                                   return matches(src, tag, m.src, m.tag);
                               });
        if (it != arrived_.end()) {
            payload = std::move(it->payload);
            arrived_.erase(it);
            matched = true;
        } else {
            posted_.push_back(Posted{src, tag, out, state});
        }
    }
    if (matched) {
        if (out.size() < payload.size())
            throw std::length_error("msg: receive buffer smaller than message");
        std::copy(payload.begin(), payload.end(), out.begin());
        state->complete(payload.size());
    }
    return Request(state);
}

std::size_t Mailbox::pending_messages() const {
    std::lock_guard lock(mu_);
    return arrived_.size();
}

std::size_t Mailbox::pending_receives() const {
    std::lock_guard lock(mu_);
    return posted_.size();
}

}  // namespace advect::msg
