#pragma once
/// \file mailbox.hpp
/// Per-rank message matching. Each rank owns one mailbox holding unmatched
/// arrived messages and unmatched posted receives. Matching follows MPI
/// rules: a receive matches the earliest arrived message with the same tag
/// from the requested source (wildcards supported), and messages between a
/// given (source, destination) pair with the same tag are non-overtaking.

#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "msg/request.hpp"

namespace advect::msg {

/// Wildcard source/tag values (MPI_ANY_SOURCE / MPI_ANY_TAG).
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// First tag reserved for the runtime's own traffic (the collective
/// rendezvous messages in comm.cpp). User point-to-point sends must use
/// tags below this; a kAnyTag wildcard receive never matches a reserved
/// tag, so draining "everything" cannot steal a collective's messages.
inline constexpr int kSystemTagBase = 1 << 24;

/// A rank's incoming-message endpoint.
class Mailbox {
  public:
    /// Deliver `data` from `src` with `tag`. If a matching receive is
    /// already posted the payload is copied into its buffer and the
    /// receive's request completes; otherwise the payload is queued.
    /// Returns once the payload has been captured (buffered-send semantics:
    /// the sender's buffer is immediately reusable).
    void deliver(int src, int tag, std::span<const double> data);

    /// Post a receive into `out` for a message from `src` (or kAnySource)
    /// with `tag` (or kAnyTag). If a queued message already matches it is
    /// consumed immediately. The returned request completes when data has
    /// been copied into `out`.
    [[nodiscard]] Request post_receive(int src, int tag, std::span<double> out);

    /// Number of queued (unmatched) messages; for tests and diagnostics.
    [[nodiscard]] std::size_t pending_messages() const;
    /// Number of posted (unmatched) receives; for tests and diagnostics.
    [[nodiscard]] std::size_t pending_receives() const;

  private:
    struct Arrived {
        int src;
        int tag;
        std::vector<double> payload;
    };
    struct Posted {
        int src;
        int tag;
        std::span<double> out;
        std::shared_ptr<detail::RequestState> state;
    };

    static bool matches(int want_src, int want_tag, int src, int tag) {
        if (want_src != kAnySource && want_src != src) return false;
        return want_tag == kAnyTag ? tag < kSystemTagBase : want_tag == tag;
    }

    mutable std::mutex mu_;
    std::deque<Arrived> arrived_;
    std::deque<Posted> posted_;
};

}  // namespace advect::msg
