#pragma once
/// \file transport.hpp
/// The transport seam under msg::Communicator (docs/TRANSPORT.md). A
/// Transport is one rank's endpoint in one job: it moves payload bytes to a
/// destination rank's mailbox and owns (or fronts) the local mailbox that
/// receives traffic addressed to this rank. Two backends implement it:
///
///  * InProcessTransport (inproc.hpp) — ranks are threads sharing a World;
///    deliver() is a direct call into the destination thread's mailbox.
///    This is the seed substrate every existing caller gets by default.
///  * SocketTransport (socket.hpp) — ranks are processes connected by a
///    full mesh of stream sockets; deliver() writes a length-prefixed,
///    sequence-numbered frame (wire.hpp) and a receiver thread feeds the
///    local mailbox.
///
/// Semantics every backend must preserve (and the tests in
/// tests/test_transport.cpp verify): buffered sends (deliver returns once
/// the payload is captured), per-(src, dst, tag) non-overtaking, and the
/// chaos engine's ticketed-FIFO delivery — the chaos session holds the
/// *closure over deliver()*, so drops and delays behave identically on
/// both backends and seed replay stays bitwise.

#include <span>

#include "msg/mailbox.hpp"

namespace advect::msg {

class Transport {
  public:
    virtual ~Transport() = default;

    [[nodiscard]] virtual int rank() const = 0;
    [[nodiscard]] virtual int size() const = 0;

    /// Move `data` to rank `dst`'s mailbox, tagged. Buffered-send semantics:
    /// returns once the payload has been captured (the caller's buffer is
    /// immediately reusable). Thread-safe: the chaos engine's delivery
    /// threads call this concurrently with the owning rank.
    virtual void deliver(int dst, int tag, std::span<const double> data) = 0;

    /// This rank's incoming-message endpoint.
    [[nodiscard]] virtual Mailbox& mailbox() = 0;

    /// Ask every process of the job to release chaos-dropped sends
    /// (chaos::Session::retransmit_lost). In-process that is one call; the
    /// socket backend also tells each peer process, since a dropped send is
    /// held inside the *sender's* chaos session.
    virtual void request_retransmits() = 0;

    /// Backend name for diagnostics: "inproc" or "socket".
    [[nodiscard]] virtual const char* backend() const = 0;
};

}  // namespace advect::msg
