#include "msg/transport/inproc.hpp"

#include "chaos/inject.hpp"

namespace advect::msg {

void InProcessTransport::request_retransmits() {
    // All ranks share one process, hence one chaos session holding every
    // dropped send.
    chaos::request_retransmits();
}

}  // namespace advect::msg
