#pragma once
/// \file process.hpp
/// The process-rank launcher: the `mpirun` of the socket backend. Forks one
/// worker per rank, each holding its row of a pre-connected full mesh of
/// Unix-domain socketpairs (created before fork, inherited — no
/// listen/connect rendezvous needed locally), runs `rank_main` with a
/// Communicator over a SocketTransport, and ships each worker's marshalled
/// result back over a dedicated control socket.
///
/// Fork discipline: call only from a quiescent process (no live rank/team
/// threads — every substrate joins its threads before returning, so any
/// point between runs qualifies). Workers `_exit()` so inherited atexit
/// handlers and stdio buffers are not replayed N times.

#include <cstdint>
#include <functional>
#include <vector>

#include "msg/comm.hpp"

namespace advect::msg {

/// Run `nranks` forked worker processes; each runs `rank_main` on its own
/// Communicator (socket backend) and returns a payload of bytes, which the
/// parent collects in rank order. A worker that throws turns the whole
/// launch into a std::runtime_error carrying the first worker's message
/// (after every worker has been reaped). The error type is not preserved
/// across the process boundary — rank_main should catch anything it wants
/// to assert on and encode it in its payload.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> run_process_ranks(
    int nranks,
    const std::function<std::vector<std::uint8_t>(Communicator&)>& rank_main);

}  // namespace advect::msg
