#pragma once
/// \file inproc.hpp
/// The in-process transport: ranks are threads sharing one World, and
/// deliver() is a direct call into the destination rank's mailbox — the
/// "cluster in a process" substitution documented in DESIGN.md §2. Each
/// rank thread owns one InProcessTransport handle onto the shared World.

#include "msg/comm.hpp"
#include "msg/transport/transport.hpp"

namespace advect::msg {

class InProcessTransport final : public Transport {
  public:
    InProcessTransport(World& world, int rank) : world_(&world), rank_(rank) {}

    [[nodiscard]] int rank() const override { return rank_; }
    [[nodiscard]] int size() const override { return world_->size(); }

    void deliver(int dst, int tag, std::span<const double> data) override {
        world_->mailbox(dst).deliver(rank_, tag, data);
    }

    [[nodiscard]] Mailbox& mailbox() override {
        return world_->mailbox(rank_);
    }

    void request_retransmits() override;

    [[nodiscard]] const char* backend() const override { return "inproc"; }

  private:
    World* world_;
    int rank_;
};

}  // namespace advect::msg
