#include "msg/transport/process.hpp"

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <csignal>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "msg/transport/socket.hpp"
#include "msg/transport/wire.hpp"

namespace advect::msg {

namespace {

[[noreturn]] void worker_main(
    int rank, std::vector<int> peer_fds, int control_fd,
    const std::function<std::vector<std::uint8_t>(Communicator&)>&
        rank_main) {
    int exit_code = 0;
    try {
        SocketTransport transport(rank, std::move(peer_fds));
        Communicator comm(transport);
        std::vector<std::uint8_t> result;
        try {
            result = rank_main(comm);
        } catch (const std::exception& e) {
            const std::string what = e.what();
            wire::write_frame(control_fd, wire::kFrameError,
                              {reinterpret_cast<const std::uint8_t*>(
                                   what.data()),
                               what.size()});
            ::close(control_fd);
            // Fall through to destroy the transport before exiting: peers
            // mid-teardown read a clean EOF, not a reset.
            throw;
        }
        wire::write_frame(control_fd, wire::kFrameResult, result);
        ::close(control_fd);
    } catch (...) {
        exit_code = 1;
    }
    // Never unwind into the parent's inherited state: skip atexit handlers
    // and don't re-flush inherited stdio buffers.
    ::_exit(exit_code);
}

}  // namespace

std::vector<std::vector<std::uint8_t>> run_process_ranks(
    int nranks,
    const std::function<std::vector<std::uint8_t>(Communicator&)>&
        rank_main) {
    if (nranks < 1)
        throw std::invalid_argument("run_process_ranks: nranks must be >= 1");
    const auto n = static_cast<std::size_t>(nranks);

    // Full mesh, connected before fork: mesh[i][j] is rank i's socket to
    // rank j (and mesh[j][i] the matching end).
    std::vector<std::vector<int>> mesh(n, std::vector<int>(n, -1));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) {
            int sv[2];
            if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
                throw std::runtime_error(
                    "run_process_ranks: socketpair failed");
            mesh[i][j] = sv[0];
            mesh[j][i] = sv[1];
        }
    std::vector<std::array<int, 2>> control(n);
    for (std::size_t r = 0; r < n; ++r) {
        int sv[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
            throw std::runtime_error("run_process_ranks: socketpair failed");
        control[r] = {sv[0], sv[1]};  // [0] parent end, [1] worker end
    }

    std::vector<pid_t> pids(n, -1);
    for (std::size_t r = 0; r < n; ++r) {
        const pid_t pid = ::fork();
        if (pid < 0) {
            for (std::size_t k = 0; k < r; ++k) ::kill(pids[k], SIGKILL);
            throw std::runtime_error("run_process_ranks: fork failed");
        }
        if (pid == 0) {
            // Worker: keep row r of the mesh and our control end; close
            // every other inherited fd so peer EOF detection works.
            for (std::size_t i = 0; i < n; ++i)
                for (std::size_t j = 0; j < n; ++j)
                    if (i != r && mesh[i][j] >= 0) ::close(mesh[i][j]);
            for (std::size_t k = 0; k < n; ++k) {
                ::close(control[k][0]);
                if (k != r) ::close(control[k][1]);
            }
            worker_main(static_cast<int>(r), mesh[r], control[r][1],
                        rank_main);
        }
        pids[r] = pid;
    }

    // Parent: release the workers' fds, then collect results.
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            if (mesh[i][j] >= 0) ::close(mesh[i][j]);
    for (std::size_t r = 0; r < n; ++r) ::close(control[r][1]);

    std::vector<std::vector<std::uint8_t>> results(n);
    std::string first_error;
    for (std::size_t r = 0; r < n; ++r) {
        wire::Frame frame;
        bool got = false;
        try {
            got = wire::read_frame(control[r][0], frame);
        } catch (const std::exception& e) {
            if (first_error.empty())
                first_error = "worker " + std::to_string(r) +
                              " control channel: " + e.what();
        }
        if (got && frame.type == wire::kFrameResult) {
            results[r] = std::move(frame.payload);
        } else if (got && frame.type == wire::kFrameError) {
            if (first_error.empty())
                first_error =
                    "worker " + std::to_string(r) + ": " +
                    std::string(frame.payload.begin(), frame.payload.end());
        } else if (first_error.empty()) {
            first_error = "worker " + std::to_string(r) +
                          " exited without a result";
        }
        ::close(control[r][0]);
    }
    for (std::size_t r = 0; r < n; ++r) {
        int status = 0;
        ::waitpid(pids[r], &status, 0);
        if (first_error.empty() &&
            !(WIFEXITED(status) && WEXITSTATUS(status) == 0))
            first_error =
                "worker " + std::to_string(r) + " died (status " +
                std::to_string(status) + ")";
    }
    if (!first_error.empty())
        throw std::runtime_error("run_process_ranks: " + first_error);
    return results;
}

}  // namespace advect::msg
