#pragma once
/// \file wire.hpp
/// Length-prefixed wire framing for the socket transport and the launcher's
/// control channel (docs/TRANSPORT.md §wire format). A frame is
///
///     u8 type | u32 length | length bytes of payload
///
/// with fixed-width little-endian integers (the framing is byte-order
/// defined so the Unix-domain mesh is TCP-ready; both ends of a link must
/// be little-endian hosts, which every supported target is). Data frames
/// carry `u32 src | i32 tag | u64 seq | doubles`; `seq` numbers each
/// (src, dst) channel so the receiver can verify stream transport preserved
/// the sender's write order — the property MPI non-overtaking and the chaos
/// ticketed-FIFO semantics are built on.
///
/// ByteWriter/ByteReader are the (same-endianness) serializers used for
/// frame payloads and for the launcher's result marshalling (impl/launch).

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace advect::msg::wire {

/// Frame types. Data/retransmit flow over the rank mesh; result/error flow
/// over a worker's control channel to the launcher.
enum FrameType : std::uint8_t {
    kFrameData = 1,        ///< one point-to-point message
    kFrameRetransmit = 2,  ///< "release your chaos-dropped sends"
    kFrameResult = 3,      ///< worker finished; payload = marshalled result
    kFrameError = 4,       ///< worker threw; payload = exception message
};

/// Append-only little-endian serializer.
class ByteWriter {
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u32(std::uint32_t v) { append(&v, sizeof v); }
    void u64(std::uint64_t v) { append(&v, sizeof v); }
    void i32(std::int32_t v) { append(&v, sizeof v); }
    void f64(double v) { append(&v, sizeof v); }
    void str(std::string_view s) {
        u32(static_cast<std::uint32_t>(s.size()));
        append(s.data(), s.size());
    }
    void doubles(std::span<const double> v) {
        u32(static_cast<std::uint32_t>(v.size()));
        append(v.data(), v.size() * sizeof(double));
    }
    void raw(std::span<const std::uint8_t> v) { append(v.data(), v.size()); }

    [[nodiscard]] std::span<const std::uint8_t> bytes() const { return buf_; }
    [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    void append(const void* p, std::size_t n) {
        const auto* b = static_cast<const std::uint8_t*>(p);
        buf_.insert(buf_.end(), b, b + n);
    }
    std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a ByteWriter's output.
class ByteReader {
  public:
    explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

    [[nodiscard]] std::uint8_t u8() {
        std::uint8_t v;
        take(&v, sizeof v);
        return v;
    }
    [[nodiscard]] std::uint32_t u32() {
        std::uint32_t v;
        take(&v, sizeof v);
        return v;
    }
    [[nodiscard]] std::uint64_t u64() {
        std::uint64_t v;
        take(&v, sizeof v);
        return v;
    }
    [[nodiscard]] std::int32_t i32() {
        std::int32_t v;
        take(&v, sizeof v);
        return v;
    }
    [[nodiscard]] double f64() {
        double v;
        take(&v, sizeof v);
        return v;
    }
    [[nodiscard]] std::string str() {
        const std::uint32_t n = u32();
        std::string s(n, '\0');
        take(s.data(), n);
        return s;
    }
    [[nodiscard]] std::vector<double> doubles() {
        const std::uint32_t n = u32();
        std::vector<double> v(n);
        take(v.data(), n * sizeof(double));
        return v;
    }
    [[nodiscard]] bool done() const { return pos_ == data_.size(); }
    [[nodiscard]] std::size_t remaining() const {
        return data_.size() - pos_;
    }

  private:
    void take(void* out, std::size_t n) {
        if (n > data_.size() - pos_)
            throw std::runtime_error("wire: truncated payload");
        std::memcpy(out, data_.data() + pos_, n);
        pos_ += n;
    }
    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

/// One parsed frame.
struct Frame {
    std::uint8_t type = 0;
    std::vector<std::uint8_t> payload;
};

/// Write one complete frame to a (blocking) stream socket. Loops over short
/// writes; throws std::system_error on failure. Uses MSG_NOSIGNAL so a
/// departed peer surfaces as EPIPE, not SIGPIPE.
void write_frame(int fd, std::uint8_t type,
                 std::span<const std::uint8_t> payload);

/// Read one complete frame. Returns false on clean EOF at a frame boundary;
/// throws on a truncated frame or read error.
[[nodiscard]] bool read_frame(int fd, Frame& out);

}  // namespace advect::msg::wire
