#pragma once
/// \file socket.hpp
/// The process-level transport: each rank is a process holding one end of a
/// connected stream socket per peer (a full mesh; Unix-domain socketpairs
/// locally, but nothing below the fd assumes the address family, so the
/// same code runs over TCP — see docs/TRANSPORT.md). A receiver thread
/// polls the peer sockets and feeds decoded data frames into the local
/// mailbox; sends go out as sequence-numbered frames under a per-peer lock.
///
/// Ordering: the kernel's stream guarantee plus one writer lock per peer
/// means frames arrive in the order deliver() was called per channel, which
/// the per-channel sequence number verifies on receipt. The chaos engine
/// orders deliver() calls themselves (ticketed FIFO per channel), exactly
/// as in-process — so non-overtaking and seed replay survive the backend
/// switch.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "msg/transport/transport.hpp"

namespace advect::msg {

class SocketTransport final : public Transport {
  public:
    /// `peer_fds[r]` is a connected stream socket to rank `r`; the entry at
    /// our own index is ignored (self-sends short-circuit to the mailbox).
    /// Takes ownership of the fds and starts the receiver thread.
    SocketTransport(int rank, std::vector<int> peer_fds);
    ~SocketTransport() override;
    SocketTransport(const SocketTransport&) = delete;
    SocketTransport& operator=(const SocketTransport&) = delete;

    [[nodiscard]] int rank() const override { return rank_; }
    [[nodiscard]] int size() const override {
        return static_cast<int>(peers_.size());
    }
    void deliver(int dst, int tag, std::span<const double> data) override;
    [[nodiscard]] Mailbox& mailbox() override { return mailbox_; }
    void request_retransmits() override;
    [[nodiscard]] const char* backend() const override { return "socket"; }

  private:
    struct Peer {
        int fd = -1;
        std::mutex send_mu;         ///< one writer at a time per peer
        std::uint64_t send_seq = 0;  ///< guarded by send_mu
        std::uint64_t recv_seq = 0;  ///< receiver thread only
        bool eof = false;            ///< receiver thread only
    };

    void receive_loop();

    int rank_;
    Mailbox mailbox_;
    std::vector<std::unique_ptr<Peer>> peers_;
    int wake_fds_[2] = {-1, -1};  ///< self-pipe that unblocks the receiver
    std::atomic<bool> stopping_{false};
    std::thread receiver_;
};

}  // namespace advect::msg
