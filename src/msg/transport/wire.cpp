#include "msg/transport/wire.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <system_error>

namespace advect::msg::wire {

namespace {

/// A frame larger than this is a corrupt stream, not a message (the largest
/// legitimate payload is a rank's full field block plus its trace spans).
constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

void write_all(int fd, const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    while (n > 0) {
        const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR) continue;
            throw std::system_error(errno, std::generic_category(),
                                    "wire: send");
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
}

/// Returns bytes read; 0 only on EOF before the first byte.
std::size_t read_all(int fd, void* data, std::size_t n) {
    auto* p = static_cast<std::uint8_t*>(data);
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::recv(fd, p + got, n - got, 0);
        if (r < 0) {
            if (errno == EINTR) continue;
            throw std::system_error(errno, std::generic_category(),
                                    "wire: recv");
        }
        if (r == 0) break;  // EOF
        got += static_cast<std::size_t>(r);
    }
    return got;
}

}  // namespace

void write_frame(int fd, std::uint8_t type,
                 std::span<const std::uint8_t> payload) {
    std::uint8_t header[5];
    header[0] = type;
    const auto len = static_cast<std::uint32_t>(payload.size());
    std::memcpy(header + 1, &len, sizeof len);
    write_all(fd, header, sizeof header);
    if (!payload.empty()) write_all(fd, payload.data(), payload.size());
}

bool read_frame(int fd, Frame& out) {
    std::uint8_t header[5];
    const std::size_t got = read_all(fd, header, sizeof header);
    if (got == 0) return false;  // clean EOF
    if (got < sizeof header)
        throw std::runtime_error("wire: truncated frame header");
    out.type = header[0];
    std::uint32_t len = 0;
    std::memcpy(&len, header + 1, sizeof len);
    if (len > kMaxFrameBytes)
        throw std::runtime_error("wire: oversized frame (corrupt stream)");
    out.payload.resize(len);
    if (len > 0 && read_all(fd, out.payload.data(), len) < len)
        throw std::runtime_error("wire: truncated frame payload");
    return true;
}

}  // namespace advect::msg::wire
