#include "msg/transport/socket.hpp"

#include <poll.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "chaos/inject.hpp"
#include "msg/transport/wire.hpp"
#include "trace/span.hpp"

namespace advect::msg {

SocketTransport::SocketTransport(int rank, std::vector<int> peer_fds)
    : rank_(rank) {
    peers_.reserve(peer_fds.size());
    for (int fd : peer_fds) {
        auto p = std::make_unique<Peer>();
        p->fd = fd;
        peers_.push_back(std::move(p));
    }
    if (::pipe(wake_fds_) != 0)
        throw std::runtime_error("socket transport: cannot create wake pipe");
    receiver_ = std::thread([this] { receive_loop(); });
}

SocketTransport::~SocketTransport() {
    stopping_.store(true, std::memory_order_release);
    const char byte = 'x';
    // Best effort: the receiver also rechecks stopping_ after every poll.
    [[maybe_unused]] const ssize_t w = ::write(wake_fds_[1], &byte, 1);
    if (receiver_.joinable()) receiver_.join();
    for (auto& p : peers_)
        if (p->fd >= 0) ::close(p->fd);
    ::close(wake_fds_[0]);
    ::close(wake_fds_[1]);
}

void SocketTransport::deliver(int dst, int tag, std::span<const double> data) {
    if (dst == rank_) {  // self-send (periodic wrap): no socket round-trip
        mailbox_.deliver(rank_, tag, data);
        return;
    }
    Peer& peer = *peers_[static_cast<std::size_t>(dst)];
    wire::ByteWriter w;
    std::lock_guard lock(peer.send_mu);
    w.u32(static_cast<std::uint32_t>(rank_));
    w.i32(tag);
    w.u64(peer.send_seq++);
    w.doubles(data);
    wire::write_frame(peer.fd, wire::kFrameData, w.bytes());
}

void SocketTransport::request_retransmits() {
    // Our own session may hold dropped self-sends; peers' sessions hold
    // everything they dropped on the way to us.
    chaos::request_retransmits();
    wire::ByteWriter empty;
    for (std::size_t r = 0; r < peers_.size(); ++r) {
        if (static_cast<int>(r) == rank_) continue;
        Peer& peer = *peers_[r];
        std::lock_guard lock(peer.send_mu);
        try {
            wire::write_frame(peer.fd, wire::kFrameRetransmit, empty.bytes());
        } catch (const std::exception&) {
            // A peer that already finished its run and closed is not an
            // error: it holds nothing we could still be waiting for.
        }
    }
}

void SocketTransport::receive_loop() {
    trace::set_current_rank(rank_);
    std::vector<pollfd> fds;
    wire::Frame frame;
    while (!stopping_.load(std::memory_order_acquire)) {
        fds.clear();
        fds.push_back({wake_fds_[0], POLLIN, 0});
        for (std::size_t r = 0; r < peers_.size(); ++r) {
            if (static_cast<int>(r) == rank_ || peers_[r]->eof) continue;
            fds.push_back({peers_[r]->fd, POLLIN, 0});
        }
        if (::poll(fds.data(), fds.size(), -1) < 0) {
            if (errno == EINTR) continue;
            std::perror("socket transport: poll");
            std::abort();
        }
        if (stopping_.load(std::memory_order_acquire)) return;
        for (const pollfd& pfd : fds) {
            if (pfd.fd == wake_fds_[0] || !(pfd.revents & (POLLIN | POLLHUP)))
                continue;
            // Find the peer this fd belongs to.
            Peer* peer = nullptr;
            std::size_t src = 0;
            for (std::size_t r = 0; r < peers_.size(); ++r)
                if (peers_[r]->fd == pfd.fd) {
                    peer = peers_[r].get();
                    src = r;
                    break;
                }
            if (peer == nullptr) continue;
            if (!wire::read_frame(pfd.fd, frame)) {
                peer->eof = true;  // peer finished its run
                continue;
            }
            if (frame.type == wire::kFrameRetransmit) {
                chaos::request_retransmits();
                continue;
            }
            if (frame.type != wire::kFrameData) {
                std::fprintf(stderr,
                             "socket transport: unexpected frame type %u\n",
                             frame.type);
                std::abort();
            }
            wire::ByteReader r(frame.payload);
            const std::uint32_t claimed_src = r.u32();
            const std::int32_t tag = r.i32();
            const std::uint64_t seq = r.u64();
            const std::vector<double> payload = r.doubles();
            if (claimed_src != src || seq != peer->recv_seq) {
                // Sequence or identity violation: stream transport failed
                // the non-overtaking contract. Unrecoverable by design.
                std::fprintf(stderr,
                             "socket transport: rank %d got frame src=%u "
                             "seq=%llu from peer %zu (expected seq %llu)\n",
                             rank_, claimed_src,
                             static_cast<unsigned long long>(seq), src,
                             static_cast<unsigned long long>(peer->recv_seq));
                std::abort();
            }
            ++peer->recv_seq;
            mailbox_.deliver(static_cast<int>(src), tag, payload);
        }
    }
}

}  // namespace advect::msg
