#include "msg/request.hpp"

namespace advect::msg {

void Request::wait() {
    if (!state_) return;
    std::unique_lock lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->done; });
}

bool Request::test() const {
    if (!state_) return true;
    std::lock_guard lock(state_->mu);
    return state_->done;
}

std::size_t Request::count() const {
    if (!state_) return 0;
    std::lock_guard lock(state_->mu);
    return state_->count;
}

void Request::wait_all(std::span<Request> reqs) {
    for (auto& r : reqs) r.wait();
}

}  // namespace advect::msg
