#include "msg/request.hpp"

#include <chrono>

#include "trace/span.hpp"

namespace advect::msg {

namespace detail {

void RequestState::complete(std::size_t delivered) {
    {
        std::lock_guard lock(mu);
        done = true;
        count = delivered;
    }
    cv.notify_all();
    // The recv span covers the request's open lifetime — post to delivery —
    // which is exactly the window the NIC would be occupied for.
    if (trace_t0 >= 0.0 && trace::enabled())
        trace::record("recv", "msg", trace::Lane::Nic, trace_t0, trace::now(),
                      trace_rank);
}

}  // namespace detail

void Request::wait() {
    if (!state_) return;
    trace::ScopedSpan span("wait", "msg", trace::Lane::Host);
    std::unique_lock lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->done; });
}

void Request::wait(double timeout_seconds) {
    if (!state_) return;
    trace::ScopedSpan span("wait", "msg", trace::Lane::Host);
    std::unique_lock lock(state_->mu);
    if (!state_->cv.wait_for(
            lock, std::chrono::duration<double>(timeout_seconds),
            [this] { return state_->done; }))
        throw TimeoutError(0);
}

bool Request::test() const {
    if (!state_) return true;
    std::lock_guard lock(state_->mu);
    return state_->done;
}

std::size_t Request::count() const {
    if (!state_) return 0;
    std::lock_guard lock(state_->mu);
    return state_->count;
}

void Request::wait_all(std::span<Request> reqs) {
    trace::ScopedSpan span("waitall", "msg", trace::Lane::Host);
    for (auto& r : reqs) r.wait();
}

void Request::wait_all(std::span<Request> reqs, double timeout_seconds) {
    trace::ScopedSpan span("waitall", "msg", trace::Lane::Host);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_seconds));
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        auto& r = reqs[i];
        if (!r.state_) continue;
        std::unique_lock lock(r.state_->mu);
        if (!r.state_->cv.wait_until(lock, deadline,
                                     [&r] { return r.state_->done; }))
            throw TimeoutError(i);
    }
}

}  // namespace advect::msg
